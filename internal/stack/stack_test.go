package stack

import (
	"bytes"
	"testing"

	"urllcsim/internal/channel"
	"urllcsim/internal/crypto5g"
	"urllcsim/internal/modulation"
	"urllcsim/internal/pdu"
	"urllcsim/internal/sim"
)

func testKeys() ([]byte, []byte) {
	ck := make([]byte, 16)
	ik := make([]byte, 16)
	for i := range ck {
		ck[i] = byte(i)
		ik[i] = byte(0xF0 - i)
	}
	return ck, ik
}

func TestSDAPEntity(t *testing.T) {
	s := &SDAP{QFI: 5}
	data := []byte("app payload")
	enc := s.Encap(data)
	got, err := s.Decap(enc)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("SDAP round trip: %v", err)
	}
	// Wrong QFI is rejected.
	other := &SDAP{QFI: 6}
	if _, err := other.Decap(enc); err == nil {
		t.Fatal("QFI mismatch accepted")
	}
}

func TestPDCPProtectUnprotect(t *testing.T) {
	ck, ik := testKeys()
	tx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 1, Direction: crypto5g.Uplink, CipherKey: ck, IntegKey: ik}
	rx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 1, Direction: crypto5g.Uplink, CipherKey: ck, IntegKey: ik}
	for i := 0; i < 50; i++ {
		msg := []byte{byte(i), 1, 2, 3}
		prot, err := tx.Protect(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rx.Unprotect(prot)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("PDCP %d: %v", i, err)
		}
	}
}

func TestPDCPCiphertextNotPlaintext(t *testing.T) {
	ck, _ := testKeys()
	tx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 1, Direction: crypto5g.Downlink, CipherKey: ck}
	msg := []byte("secret user data, clearly visible if ciphering is broken")
	prot, err := tx.Protect(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(prot, msg[:16]) {
		t.Fatal("plaintext leaked into PDCP PDU")
	}
}

func TestPDCPIntegrityTamperDetected(t *testing.T) {
	ck, ik := testKeys()
	tx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 2, Direction: crypto5g.Uplink, CipherKey: ck, IntegKey: ik}
	rx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 2, Direction: crypto5g.Uplink, CipherKey: ck, IntegKey: ik}
	prot, _ := tx.Protect([]byte("do not touch"))
	prot[len(prot)-5] ^= 0x40 // tamper with ciphertext
	if _, err := rx.Unprotect(prot); err == nil {
		t.Fatal("tampered PDU passed integrity")
	}
}

func TestPDCPWrongKeysFail(t *testing.T) {
	ck, ik := testKeys()
	tx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 2, Direction: crypto5g.Uplink, CipherKey: ck, IntegKey: ik}
	rx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 2, Direction: crypto5g.Uplink, CipherKey: ck, IntegKey: ck}
	prot, _ := tx.Protect([]byte("hello"))
	if _, err := rx.Unprotect(prot); err == nil {
		t.Fatal("wrong integrity key accepted")
	}
}

func TestPDCPSNWrapAround(t *testing.T) {
	ck, _ := testKeys()
	tx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 1, Direction: crypto5g.Uplink, CipherKey: ck}
	rx := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 1, Direction: crypto5g.Uplink, CipherKey: ck}
	// Drive COUNT past the 12-bit SN wrap.
	for i := 0; i < 5000; i++ {
		msg := []byte{byte(i), byte(i >> 8)}
		prot, err := tx.Protect(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rx.Unprotect(prot)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("wrap failure at COUNT %d: %v", i, err)
		}
	}
}

func TestRLCQueue(t *testing.T) {
	r := NewRLC()
	r.Enqueue(RLCQueued{ID: 1, Data: []byte("aa"), EnqueuedAt: 10})
	r.Enqueue(RLCQueued{ID: 2, Data: []byte("bbbb"), EnqueuedAt: 20})
	r.Enqueue(RLCQueued{ID: 3, Data: []byte("c"), EnqueuedAt: 30})
	if r.QueueLen() != 3 || r.QueuedBytes() != 7 {
		t.Fatalf("queue: %d items %dB", r.QueueLen(), r.QueuedBytes())
	}
	taken := r.DequeueIDs([]int{1, 3})
	if len(taken) != 2 || taken[0].ID != 1 || taken[1].ID != 3 {
		t.Fatalf("dequeue = %+v", taken)
	}
	if r.QueueLen() != 1 || r.Peek()[0].ID != 2 {
		t.Fatal("remaining queue wrong")
	}
}

func TestRLCSegmentReceive(t *testing.T) {
	tx := NewRLC()
	rx := NewRLC()
	sdu := make([]byte, 500)
	for i := range sdu {
		sdu[i] = byte(i * 7)
	}
	pdus, err := tx.Segment(sdu, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(pdus) < 4 {
		t.Fatalf("segments = %d", len(pdus))
	}
	var got []byte
	for i, p := range pdus {
		out, err := rx.Receive(p)
		if err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
		if i < len(pdus)-1 && out != nil {
			t.Fatalf("SDU completed early at %d", i)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, sdu) {
		t.Fatal("reassembled SDU differs")
	}
}

func TestRLCInterleavedSNs(t *testing.T) {
	tx := NewRLC()
	rx := NewRLC()
	a, _ := tx.Segment(bytes.Repeat([]byte{1}, 300), 128)
	b, _ := tx.Segment(bytes.Repeat([]byte{2}, 300), 128)
	// Interleave the two SDUs' segments.
	var done int
	for i := 0; i < len(a) || i < len(b); i++ {
		for _, set := range [][][]byte{a, b} {
			if i < len(set) {
				out, err := rx.Receive(set[i])
				if err != nil {
					t.Fatal(err)
				}
				if out != nil {
					done++
				}
			}
		}
	}
	if done != 2 {
		t.Fatalf("completed %d SDUs, want 2", done)
	}
}

func TestRLCSNIncrements(t *testing.T) {
	tx := NewRLC()
	p1, _ := tx.Segment([]byte("x"), 100)
	p2, _ := tx.Segment(bytes.Repeat([]byte{9}, 300), 100)
	full, err := pdu.DecodeRLCUM(p1[0])
	if err != nil || full.SI != pdu.SIFull {
		t.Fatal("first SDU should be SIFull")
	}
	seg, err := pdu.DecodeRLCUM(p2[0])
	if err != nil || seg.SN != 1 {
		t.Fatalf("second SDU SN = %d, want 1", seg.SN)
	}
}

func TestMACMuxDemux(t *testing.T) {
	m := &MAC{LCID: 4}
	payloads := [][]byte{[]byte("pdu one"), []byte("pdu two")}
	tb, err := m.BuildTB(payloads, 64)
	if err != nil || len(tb) != 64 {
		t.Fatalf("BuildTB: %d %v", len(tb), err)
	}
	got, err := m.ParseTB(tb)
	if err != nil || len(got) != 2 || !bytes.Equal(got[0], payloads[0]) {
		t.Fatalf("ParseTB: %v %v", got, err)
	}
	// A different LCID sees nothing.
	other := &MAC{LCID: 5}
	none, err := other.ParseTB(tb)
	if err != nil || len(none) != 0 {
		t.Fatal("LCID filter leaked")
	}
}

func TestPHYAnalyticGoodAndBadSNR(t *testing.T) {
	mcs, _ := modulation.MCSByIndex(10)
	rng := sim.NewRNG(1)
	good := NewPHY(PHYAnalytic, mcs, channel.AWGN{SNR: 30}, rng)
	tb := make([]byte, 200)
	for i := 0; i < 100; i++ {
		got, err := good.Transmit(tb, 0)
		if err != nil || !bytes.Equal(got, tb) {
			t.Fatalf("good channel lost a block: %v", err)
		}
	}
	bad := NewPHY(PHYAnalytic, mcs, channel.AWGN{SNR: -5}, rng)
	losses := 0
	for i := 0; i < 100; i++ {
		if _, err := bad.Transmit(tb, 0); err != nil {
			losses++
		}
	}
	if losses < 95 {
		t.Fatalf("bad channel lost only %d/100", losses)
	}
}

func TestPHYFullChain(t *testing.T) {
	mcs, _ := modulation.MCSByIndex(3) // QPSK
	rng := sim.NewRNG(2)
	phy := NewPHY(PHYFull, mcs, channel.AWGN{SNR: 9}, rng)
	tb := make([]byte, 120)
	for i := range tb {
		tb[i] = byte(i * 13)
	}
	ok := 0
	for i := 0; i < 20; i++ {
		got, err := phy.Transmit(tb, sim.Time(i))
		if err == nil && bytes.Equal(got, tb) {
			ok++
		}
	}
	// QPSK@9dB → BER≈1e-5 → with K=7 coding essentially always decodable.
	if ok < 19 {
		t.Fatalf("full chain succeeded only %d/20", ok)
	}
}

func TestPHYFullChainFailsInDeepFade(t *testing.T) {
	mcs, _ := modulation.MCSByIndex(3)
	rng := sim.NewRNG(3)
	phy := NewPHY(PHYFull, mcs, channel.AWGN{SNR: -3}, rng)
	tb := make([]byte, 120)
	fails := 0
	for i := 0; i < 10; i++ {
		if _, err := phy.Transmit(tb, sim.Time(i)); err != nil {
			fails++
		}
	}
	if fails < 9 {
		t.Fatalf("deep fade decoded %d/10 blocks — CRC must catch garbage", 10-fails)
	}
}

func TestPHYAirTime(t *testing.T) {
	mcs, _ := modulation.MCSByIndex(10)
	phy := NewPHY(PHYAnalytic, mcs, channel.AWGN{SNR: 20}, sim.NewRNG(4))
	sym := 250 * sim.Microsecond / 14
	at, err := phy.AirTime(32, 106, sym)
	if err != nil {
		t.Fatal(err)
	}
	if at < sym || at > 2*sym {
		t.Fatalf("32B air time = %v, want 1–2 symbols", at)
	}
}

// Full UL data plane: APP → SDAP → PDCP → RLC → MAC → PHY → MAC → RLC →
// PDCP → SDAP with real bytes end to end.
func TestFullUserPlaneChain(t *testing.T) {
	ck, ik := testKeys()
	app := []byte("ping request: 32 bytes payload..")

	txSDAP := &SDAP{QFI: 1}
	txPDCP := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 4, Direction: crypto5g.Uplink, CipherKey: ck, IntegKey: ik}
	txRLC := NewRLC()
	txMAC := &MAC{LCID: 4}

	rxSDAP := &SDAP{QFI: 1}
	rxPDCP := &PDCP{SNBits: pdu.PDCPSN12, Bearer: 4, Direction: crypto5g.Uplink, CipherKey: ck, IntegKey: ik}
	rxRLC := NewRLC()
	rxMAC := &MAC{LCID: 4}

	mcs, _ := modulation.MCSByIndex(10)
	phy := NewPHY(PHYAnalytic, mcs, channel.AWGN{SNR: 25}, sim.NewRNG(5))

	sdap := txSDAP.Encap(app)
	pdcp, err := txPDCP.Protect(sdap)
	if err != nil {
		t.Fatal(err)
	}
	rlcs, err := txRLC.Segment(pdcp, 64)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := txMAC.BuildTB(rlcs, 128)
	if err != nil {
		t.Fatal(err)
	}
	rxTB, err := phy.Transmit(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := rxMAC.ParseTB(rxTB)
	if err != nil {
		t.Fatal(err)
	}
	var sdu []byte
	for _, p := range payloads {
		out, err := rxRLC.Receive(p)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			sdu = out
		}
	}
	if sdu == nil {
		t.Fatal("RLC never completed the SDU")
	}
	plain, err := rxPDCP.Unprotect(sdu)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rxSDAP.Decap(plain)
	if err != nil || !bytes.Equal(got, app) {
		t.Fatalf("end-to-end chain: %q %v", got, err)
	}
}
