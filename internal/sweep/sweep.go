// Package sweep fans independent simulation replicas across a worker pool
// and merges their per-shard metrics exactly. It is the scaling primitive of
// the repository: the paper's feasibility grids and latency distributions
// are embarrassingly parallel (independent configurations × seeds), so every
// experiment that offers traffic to more than one engine runs its shards
// through Run.
//
// The package enforces one invariant, which the tests pin down and every
// caller may rely on: the merged result of a sweep is bit-identical for any
// worker count. Three design rules make that true:
//
//  1. Each shard owns its world. A job builds its own discrete-event engine,
//     RNG and metrics registry; nothing is shared between concurrently
//     running shards, so goroutine scheduling cannot leak into results.
//
//  2. Seeds derive from the shard index, never the worker. Seed composes two
//     splitmix64 steps over (base, shard), so shard i draws the same random
//     stream whether it runs first on one worker or last on sixteen.
//
//  3. Merging happens in shard order. Run returns results indexed by shard,
//     and the merge helpers fold them left-to-right: counters add,
//     LogHistograms merge exactly by bucket, Histogram reservoirs and
//     Welford accumulators merge deterministically (their combination is
//     order-sensitive only in float rounding, and the order is fixed).
//
// Parallelism is therefore a pure wall-clock speedup, not a semantics
// change: `-parallel 1` is the golden output of `-parallel N`.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"urllcsim/internal/metrics"
	"urllcsim/internal/obs"
	"urllcsim/internal/sim"
)

// Workers resolves a requested worker-pool width: n when positive, otherwise
// GOMAXPROCS — one worker per schedulable CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Seed derives the seed of one shard from the sweep's base seed: two
// composed splitmix64 steps decorrelate the shard streams from each other
// and from the base. The result depends only on (base, shard) — never on
// which worker runs the shard or how many workers exist — which is the first
// half of the worker-count-invariance contract (the other half is merging in
// shard order).
func Seed(base uint64, shard int) uint64 {
	return sim.SplitMix64(sim.SplitMix64(base) + uint64(shard))
}

// Run executes jobs 0…n−1 on a pool of workers goroutines and returns the
// results in shard order. Shards are claimed from a shared counter, so a
// slow shard never stalls the rest of the pool behind a static partition.
// A failing job does not cancel the sweep — remaining shards still run and
// every error is reported, joined in shard order with its shard index
// attached. Results of failed shards are the zero value; callers that merge
// must check the error first.
func Run[R any](workers, n int, job func(shard int) (R, error)) ([]R, error) {
	results := make([]R, n)
	errs := make([]error, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = runShard(i, job)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = runShard(i, job)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("sweep: shard %d: %w", i, err)
		}
	}
	return results, errors.Join(errs...)
}

// runShard runs one job, converting a panic into an error so a crashing
// shard reports like a failing one instead of killing the whole pool.
func runShard[R any](i int, job func(shard int) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return job(i)
}

// MergeRegistries folds shard registries into one fresh registry in shard
// order (counters add, timings merge exactly, gauges last-shard-wins; see
// obs.Registry.Merge). Nil shards — e.g. unobserved replicas — are skipped.
func MergeRegistries(shards []*obs.Registry) *obs.Registry {
	merged := obs.NewRegistry()
	for _, s := range shards {
		merged.Merge(s)
	}
	return merged
}

// MergeHistograms folds shard histograms into one fresh histogram with the
// given geometry, in shard order. Shard histograms must share that geometry.
// Nil shards are skipped.
func MergeHistograms(max float64, bins int, shards []*metrics.Histogram) *metrics.Histogram {
	merged := metrics.NewHistogram(max, bins)
	for _, s := range shards {
		merged.Merge(s)
	}
	return merged
}

// MergeLogHistograms folds shard HDR histograms into one, in shard order.
// The merge is exact: bucket geometry is a package constant of
// internal/metrics. Nil shards are skipped.
func MergeLogHistograms(shards []*metrics.LogHistogram) *metrics.LogHistogram {
	merged := metrics.NewLogHistogram()
	for _, s := range shards {
		merged.Merge(s)
	}
	return merged
}

// Split distributes total units over shards as evenly as possible: the first
// total%shards shards get one extra unit. It is the canonical way to shard
// "n packets" into per-replica offers without losing the remainder.
func Split(total, shards int) []int {
	if shards <= 0 {
		return nil
	}
	out := make([]int, shards)
	per, extra := total/shards, total%shards
	for i := range out {
		out[i] = per
		if i < extra {
			out[i]++
		}
	}
	return out
}
