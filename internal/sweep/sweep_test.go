package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"urllcsim/internal/metrics"
	"urllcsim/internal/obs"
	"urllcsim/internal/sim"
)

func TestSeedDependsOnShardAndBaseOnly(t *testing.T) {
	if Seed(1, 0) == Seed(1, 1) {
		t.Fatal("adjacent shards drew the same seed")
	}
	if Seed(1, 3) != Seed(1, 3) {
		t.Fatal("Seed is not a pure function")
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Fatal("different base seeds collided on shard 0")
	}
	// Raw increments of the base must not alias a neighbouring shard: the
	// double-mix decorrelates (base, shard) from (base+1, shard-1).
	if Seed(1, 1) == Seed(2, 0) {
		t.Fatal("seed stream aliases across (base, shard) diagonals")
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		total, shards int
		want          []int
	}{
		{10, 4, []int{3, 3, 2, 2}},
		{8, 8, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{3, 8, []int{1, 1, 1, 0, 0, 0, 0, 0}},
		{0, 3, []int{0, 0, 0}},
		{5, 0, nil},
	}
	for _, c := range cases {
		got := Split(c.total, c.shards)
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("Split(%d,%d) = %v, want %v", c.total, c.shards, got, c.want)
		}
		sum := 0
		for _, n := range got {
			sum += n
		}
		if c.shards > 0 && sum != c.total {
			t.Fatalf("Split(%d,%d) loses units: %v", c.total, c.shards, got)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit width ignored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("defaulted width must be at least 1")
	}
}

func TestRunReturnsShardOrder(t *testing.T) {
	got, err := Run(8, 100, func(shard int) (int, error) { return shard * shard, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d: results not indexed by shard", i, v)
		}
	}
}

// shardWork simulates one shard's measurement load: everything below derives
// only from the shard's Seed-ed RNG, as real sweep jobs must.
func shardWork(shard int) (*obs.Registry, *metrics.Histogram, *metrics.LogHistogram) {
	rng := sim.NewRNG(Seed(42, shard))
	reg := obs.NewRegistry()
	hist := metrics.NewHistogram(8, 32)
	hdr := metrics.NewLogHistogram()
	lat := reg.Timing("pkt.latency")
	for i := 0; i < 400; i++ {
		d := sim.Duration(rng.LogNormal(12, 0.5))
		lat.Observe(d)
		hist.AddDuration(d)
		hdr.AddDuration(d)
		reg.Counter("pkt.offered").Inc()
		if rng.Bernoulli(0.01) {
			reg.Counter("pkt.lost").Inc()
		}
	}
	reg.Gauge("queue.depth").Set(float64(rng.Intn(10)))
	return reg, hist, hdr
}

// TestWorkerCountInvariance is the package's headline contract: merging the
// shard results of a sweep yields bit-identical registries and histograms for
// any worker count. The 1-worker run is the golden output; 2 and 8 workers
// must reproduce it exactly (reflect.DeepEqual follows every unexported
// field, including reservoir contents and RNG states).
func TestWorkerCountInvariance(t *testing.T) {
	type out struct {
		reg  *obs.Registry
		hist *metrics.Histogram
		hdr  *metrics.LogHistogram
	}
	const shards = 16
	sweepOnce := func(workers int) out {
		res, err := Run(workers, shards, func(shard int) (out, error) {
			reg, hist, hdr := shardWork(shard)
			return out{reg, hist, hdr}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		regs := make([]*obs.Registry, shards)
		hists := make([]*metrics.Histogram, shards)
		hdrs := make([]*metrics.LogHistogram, shards)
		for i, r := range res {
			regs[i], hists[i], hdrs[i] = r.reg, r.hist, r.hdr
		}
		return out{MergeRegistries(regs), MergeHistograms(8, 32, hists), MergeLogHistograms(hdrs)}
	}
	golden := sweepOnce(1)
	if n := golden.reg.Counter("pkt.offered").Value(); n != shards*400 {
		t.Fatalf("merged counter = %d, want %d", n, shards*400)
	}
	for _, workers := range []int{2, 8} {
		got := sweepOnce(workers)
		if !reflect.DeepEqual(golden.reg, got.reg) {
			t.Errorf("%d workers: merged registry differs from sequential:\n-- 1 worker --\n%s-- %d workers --\n%s",
				workers, golden.reg.Summary(), workers, got.reg.Summary())
		}
		if !reflect.DeepEqual(golden.hist, got.hist) {
			t.Errorf("%d workers: merged histogram differs from sequential", workers)
		}
		if !reflect.DeepEqual(golden.hdr, got.hdr) {
			t.Errorf("%d workers: merged HDR histogram differs from sequential", workers)
		}
	}
}

// TestRunConcurrent drives genuinely parallel shards under -race: each shard
// owns its registry (no sharing), and a shared atomic counter proves every
// shard ran exactly once.
func TestRunConcurrent(t *testing.T) {
	var ran atomic.Int64
	res, err := Run(8, 64, func(shard int) (int64, error) {
		reg, _, _ := shardWork(shard)
		ran.Add(1)
		return reg.Counter("pkt.offered").Value(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Fatalf("%d shards ran, want 64", ran.Load())
	}
	for i, v := range res {
		if v != 400 {
			t.Fatalf("shard %d returned %d offered packets, want 400", i, v)
		}
	}
}

func TestRunCollectsAllErrors(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(4, 6, func(shard int) (int, error) {
		if shard == 2 || shard == 4 {
			return 0, fmt.Errorf("shard-local: %w", boom)
		}
		return shard + 1, nil
	})
	if err == nil {
		t.Fatal("failing shards reported no error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause lost: %v", err)
	}
	for _, want := range []string{"shard 2", "shard 4"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not attribute %s", err, want)
		}
	}
	// Healthy shards still ran to completion — a failure never cancels the sweep.
	for _, i := range []int{0, 1, 3, 5} {
		if res[i] != i+1 {
			t.Fatalf("healthy shard %d result clobbered: %d", i, res[i])
		}
	}
	for _, i := range []int{2, 4} {
		if res[i] != 0 {
			t.Fatalf("failed shard %d must return the zero value, got %d", i, res[i])
		}
	}
}

func TestRunRecoversShardPanic(t *testing.T) {
	_, err := Run(2, 4, func(shard int) (int, error) {
		if shard == 1 {
			panic("shard exploded")
		}
		return shard, nil
	})
	if err == nil || !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panic not converted to an attributed error: %v", err)
	}
}
