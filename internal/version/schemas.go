package version

// The schema identifiers of every JSONL dialect this repository writes.
// Each producing package declares its own constant next to its writer (the
// string is part of that package's wire contract); this registry re-states
// them in one place so `-version` output, documentation and the
// cross-dialect readers of cmd/urllc-report agree on the full list without
// importing every producer. TestSchemaRegistry in this package pins
// the two copies together.
const (
	SchemaTrace   = "urllcsim-trace/v1"   // obs.WriteJSONL span/outcome/event traces
	SchemaFlight  = "urllcsim-flight/v1"  // tail-forensics flight records
	SchemaAnomaly = "urllcsim-anomaly/v1" // watchdog anomaly events
	SchemaProfile = "urllcsim-profile/v3" // engine self-profile records
	SchemaBench   = "urllc-bench/v1"      // BENCH_*.json perf snapshots
	SchemaSlots   = "urllcsim-slots/v1"   // per-slot occupancy ledger
	SchemaKPI     = "urllcsim-kpi/v1"     // per-UE KPI / fairness / CCDF records
)

// Schemas lists every registered schema identifier, in declaration order.
func Schemas() []string {
	return []string{
		SchemaTrace, SchemaFlight, SchemaAnomaly, SchemaProfile,
		SchemaBench, SchemaSlots, SchemaKPI,
	}
}

// Known reports whether s is a schema identifier this build knows about —
// the first triage question when a reader rejects a file.
func Known(s string) bool {
	for _, k := range Schemas() {
		if k == s {
			return true
		}
	}
	return false
}
