package version_test

import (
	"testing"

	"urllcsim/internal/bench"
	"urllcsim/internal/obs"
	"urllcsim/internal/obs/analyze"
	"urllcsim/internal/obs/flight"
	"urllcsim/internal/obs/prof"
	"urllcsim/internal/version"
)

// TestSchemaRegistry pins internal/version's schema registry to the
// constants each producing package declares next to its writer. A mismatch
// means a dialect was renamed or added on one side only — -version output,
// cmd/urllc-report triage and the wire format must move together.
func TestSchemaRegistry(t *testing.T) {
	pairs := []struct {
		registry, producer, name string
	}{
		{version.SchemaTrace, obs.TraceSchema, "trace"},
		{version.SchemaFlight, flight.Schema, "flight"},
		{version.SchemaAnomaly, flight.AnomalySchema, "anomaly"},
		{version.SchemaProfile, prof.ReportSchema, "profile"},
		{version.SchemaBench, bench.Schema, "bench"},
		{version.SchemaSlots, obs.SlotsSchema, "slots"},
		{version.SchemaKPI, analyze.KPISchema, "kpi"},
	}
	for _, p := range pairs {
		if p.registry != p.producer {
			t.Errorf("%s schema: registry says %q, producer says %q", p.name, p.registry, p.producer)
		}
		if !version.Known(p.producer) {
			t.Errorf("%s schema %q not in version.Schemas()", p.name, p.producer)
		}
	}
	if got, want := len(version.Schemas()), len(pairs); got != want {
		t.Errorf("version.Schemas() lists %d dialects, %d producers are registered here — update both", got, want)
	}
	if version.Known("urllcsim-made-up/v1") {
		t.Error("Known accepted an unregistered schema")
	}
}
