// Package version answers "which build is this, and which JSONL dialects
// does it speak?" — the first two questions of any forensic session that
// starts from an artifact file instead of a live run. Every CLI exposes it
// behind -version, printing the module version, the VCS commit when the Go
// toolchain stamped one, and the schema identifiers the command emits and
// accepts, so a mismatch between a file and a reader is diagnosable without
// reading code.
package version

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Info is the resolved build identity.
type Info struct {
	Module   string // module path ("urllcsim")
	Version  string // module version ("(devel)" for a source build)
	Revision string // VCS commit hash, "" when not stamped
	Dirty    bool   // VCS working tree had local modifications
	Go       string // toolchain that built the binary
}

// Get reads the build identity stamped into the running binary. Works for
// source builds ("(devel)", no revision) and released/VCS-stamped builds
// alike; never fails.
func Get() Info {
	info := Info{Module: "urllcsim", Version: "(devel)", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line: "urllcsim (devel) commit abc1234
// (dirty) go1.23.0".
func (i Info) String() string {
	s := i.Module + " " + i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " commit " + rev
		if i.Dirty {
			s += " (dirty)"
		}
	}
	return s + " " + i.Go
}

// Print writes the -version report for one command: build identity plus the
// schema-versioned JSONL dialects it emits and accepts.
func Print(w io.Writer, cmd string, emits, accepts []string) {
	fmt.Fprintf(w, "%s %s\n", cmd, Get())
	for _, s := range emits {
		fmt.Fprintf(w, "  emits   %s\n", s)
	}
	for _, s := range accepts {
		fmt.Fprintf(w, "  accepts %s\n", s)
	}
}
