// Package workload generates traffic arrival processes: the
// uniform-within-pattern arrivals of the paper's §7 demonstration, Poisson
// traffic, the periodic/deterministic flows of industrial automation, and
// audio-frame streams (the Nokia/Sennheiser use case of [33]).
package workload

import (
	"fmt"

	"urllcsim/internal/sim"
)

// Packet is one offered unit of traffic.
type Packet struct {
	ID      int
	Arrival sim.Time
	Bytes   int
}

// Generator produces arrival times; Next returns successive packets in
// non-decreasing arrival order.
type Generator interface {
	Next() Packet
	Name() string
}

// Uniform generates arrivals uniformly distributed within each period —
// "the packets are uniformly generated within the pattern" (§7). One packet
// per period keeps successive packets independent, matching the paper's
// per-packet latency histograms.
type Uniform struct {
	Period sim.Duration
	Bytes  int
	rng    *sim.RNG
	n      int
}

// NewUniform returns a uniform-in-period generator.
func NewUniform(period sim.Duration, bytes int, rng *sim.RNG) *Uniform {
	if period <= 0 {
		panic("workload: non-positive period")
	}
	return &Uniform{Period: period, Bytes: bytes, rng: rng}
}

// Next implements Generator.
func (u *Uniform) Next() Packet {
	off := u.rng.UniformDuration(0, u.Period)
	p := Packet{ID: u.n, Arrival: sim.Time(int64(u.n) * int64(u.Period)).Add(off), Bytes: u.Bytes}
	u.n++
	return p
}

// Name implements Generator.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(%v)", u.Period) }

// Poisson generates a Poisson arrival process with the given mean rate.
type Poisson struct {
	MeanInterarrival sim.Duration
	Bytes            int
	rng              *sim.RNG
	n                int
	last             sim.Time
}

// NewPoisson returns a Poisson generator.
func NewPoisson(meanInterarrival sim.Duration, bytes int, rng *sim.RNG) *Poisson {
	if meanInterarrival <= 0 {
		panic("workload: non-positive interarrival")
	}
	return &Poisson{MeanInterarrival: meanInterarrival, Bytes: bytes, rng: rng}
}

// Next implements Generator.
func (p *Poisson) Next() Packet {
	gap := sim.Duration(p.rng.Exponential(float64(p.MeanInterarrival)))
	p.last = p.last.Add(gap)
	pkt := Packet{ID: p.n, Arrival: p.last, Bytes: p.Bytes}
	p.n++
	return pkt
}

// Name implements Generator.
func (p *Poisson) Name() string { return fmt.Sprintf("poisson(%v)", p.MeanInterarrival) }

// Periodic generates strictly periodic traffic with optional phase jitter —
// the control loops of industrial automation (sensors and actuators on a
// fixed cycle, §1's "industrial automation" use case).
type Periodic struct {
	Period   sim.Duration
	JitterNs sim.Duration // uniform ±jitter/2 around the tick
	Bytes    int
	rng      *sim.RNG
	n        int
}

// NewPeriodic returns a periodic generator.
func NewPeriodic(period, jitter sim.Duration, bytes int, rng *sim.RNG) *Periodic {
	if period <= 0 {
		panic("workload: non-positive period")
	}
	return &Periodic{Period: period, JitterNs: jitter, Bytes: bytes, rng: rng}
}

// Next implements Generator.
func (p *Periodic) Next() Packet {
	t := sim.Time(int64(p.n) * int64(p.Period))
	if p.JitterNs > 0 {
		t = t.Add(p.rng.UniformDuration(0, p.JitterNs))
	}
	pkt := Packet{ID: p.n, Arrival: t, Bytes: p.Bytes}
	p.n++
	return pkt
}

// Name implements Generator.
func (p *Periodic) Name() string { return fmt.Sprintf("periodic(%v)", p.Period) }

// AudioFrames models professional live audio ([33]): fixed-size frames at
// the codec frame rate (e.g. 48 kHz × 0.25 ms framing → 96 samples × 3 B
// per frame every 250 µs).
func AudioFrames(rng *sim.RNG) *Periodic {
	const frame = 250 * sim.Microsecond
	const bytes = 96 * 3
	return NewPeriodic(frame, 0, bytes, rng)
}

// Take drains n packets from a generator.
func Take(g Generator, n int) []Packet {
	out := make([]Packet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
