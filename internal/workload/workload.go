// Package workload generates traffic arrival processes: the
// uniform-within-pattern arrivals of the paper's §7 demonstration, Poisson
// traffic, the periodic/deterministic flows of industrial automation, and
// audio-frame streams (the Nokia/Sennheiser use case of [33]).
package workload

import (
	"fmt"
	"sort"

	"urllcsim/internal/sim"
)

// Packet is one offered unit of traffic.
type Packet struct {
	ID      int
	Arrival sim.Time
	Bytes   int
}

// Generator produces arrival times; Next returns successive packets in
// non-decreasing arrival order.
type Generator interface {
	Next() Packet
	Name() string
}

// Uniform generates arrivals uniformly distributed within each period —
// "the packets are uniformly generated within the pattern" (§7). One packet
// per period keeps successive packets independent, matching the paper's
// per-packet latency histograms.
type Uniform struct {
	Period sim.Duration
	Bytes  int
	rng    *sim.RNG
	n      int
}

// NewUniform returns a uniform-in-period generator.
func NewUniform(period sim.Duration, bytes int, rng *sim.RNG) *Uniform {
	if period <= 0 {
		panic("workload: non-positive period")
	}
	return &Uniform{Period: period, Bytes: bytes, rng: rng}
}

// Next implements Generator.
func (u *Uniform) Next() Packet {
	off := u.rng.UniformDuration(0, u.Period)
	p := Packet{ID: u.n, Arrival: sim.Time(int64(u.n) * int64(u.Period)).Add(off), Bytes: u.Bytes}
	u.n++
	return p
}

// Name implements Generator.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform(%v)", u.Period) }

// Poisson generates a Poisson arrival process with the given mean rate.
type Poisson struct {
	MeanInterarrival sim.Duration
	Bytes            int
	rng              *sim.RNG
	n                int
	last             sim.Time
}

// NewPoisson returns a Poisson generator.
func NewPoisson(meanInterarrival sim.Duration, bytes int, rng *sim.RNG) *Poisson {
	if meanInterarrival <= 0 {
		panic("workload: non-positive interarrival")
	}
	return &Poisson{MeanInterarrival: meanInterarrival, Bytes: bytes, rng: rng}
}

// Next implements Generator.
func (p *Poisson) Next() Packet {
	gap := sim.Duration(p.rng.Exponential(float64(p.MeanInterarrival)))
	p.last = p.last.Add(gap)
	pkt := Packet{ID: p.n, Arrival: p.last, Bytes: p.Bytes}
	p.n++
	return pkt
}

// Name implements Generator.
func (p *Poisson) Name() string { return fmt.Sprintf("poisson(%v)", p.MeanInterarrival) }

// Periodic generates strictly periodic traffic with optional phase jitter —
// the control loops of industrial automation (sensors and actuators on a
// fixed cycle, §1's "industrial automation" use case).
type Periodic struct {
	Period   sim.Duration
	JitterNs sim.Duration // uniform ±jitter/2 around the tick
	Bytes    int
	rng      *sim.RNG
	n        int
}

// NewPeriodic returns a periodic generator.
func NewPeriodic(period, jitter sim.Duration, bytes int, rng *sim.RNG) *Periodic {
	if period <= 0 {
		panic("workload: non-positive period")
	}
	return &Periodic{Period: period, JitterNs: jitter, Bytes: bytes, rng: rng}
}

// Next implements Generator.
func (p *Periodic) Next() Packet {
	t := sim.Time(int64(p.n) * int64(p.Period))
	if p.JitterNs > 0 {
		t = t.Add(p.rng.UniformDuration(0, p.JitterNs))
	}
	pkt := Packet{ID: p.n, Arrival: t, Bytes: p.Bytes}
	p.n++
	return pkt
}

// Name implements Generator.
func (p *Periodic) Name() string { return fmt.Sprintf("periodic(%v)", p.Period) }

// AudioFrames models professional live audio ([33]): fixed-size frames at
// the codec frame rate (e.g. 48 kHz × 0.25 ms framing → 96 samples × 3 B
// per frame every 250 µs).
func AudioFrames(rng *sim.RNG) *Periodic {
	const frame = 250 * sim.Microsecond
	const bytes = 96 * 3
	return NewPeriodic(frame, 0, bytes, rng)
}

// MachinePacket is one offered unit of traffic attributed to a machine (UE).
type MachinePacket struct {
	UE int
	Packet
}

// Fleet generates the Industry-4.0 many-machine shape of the ns-3 LENA
// configured-grant study: N periodic machines on a common cycle, each with a
// deterministic phase stagger (machine i offset by i·Period/N so the fleet
// never fires in lock-step) plus optional per-machine jitter drawn from a
// forked RNG per machine — the same fleet is generated regardless of how
// many packets are drawn or in what grouping.
type Fleet struct {
	N      int
	Period sim.Duration
	Jitter sim.Duration // uniform in [0, Jitter) around each machine's tick
	Bytes  int

	rngs  []*sim.RNG
	cycle int
	next  []MachinePacket // pending packets of the current cycle, sorted
	ids   int
}

// NewFleet returns an N-machine periodic fleet. Each machine gets its own
// forked RNG stream so per-machine jitter is independent of N and of draw
// order.
func NewFleet(n int, period, jitter sim.Duration, bytes int, rng *sim.RNG) *Fleet {
	if n <= 0 {
		panic("workload: non-positive fleet size")
	}
	if period <= 0 {
		panic("workload: non-positive period")
	}
	f := &Fleet{N: n, Period: period, Jitter: jitter, Bytes: bytes}
	f.rngs = make([]*sim.RNG, n)
	for i := range f.rngs {
		f.rngs[i] = rng.Fork(uint64(i))
	}
	return f
}

// NextMachine returns the fleet's next packet in non-decreasing arrival
// order with its machine attribution.
func (f *Fleet) NextMachine() MachinePacket {
	if len(f.next) == 0 {
		f.fill()
	}
	p := f.next[0]
	f.next = f.next[1:]
	p.ID = f.ids
	f.ids++
	return p
}

// fill generates one full cycle of the fleet and sorts it by arrival.
func (f *Fleet) fill() {
	base := sim.Time(int64(f.cycle) * int64(f.Period))
	f.next = make([]MachinePacket, f.N)
	for i := range f.next {
		t := base.Add(sim.Duration(int64(f.Period) * int64(i) / int64(f.N)))
		if f.Jitter > 0 {
			t = t.Add(f.rngs[i].UniformDuration(0, f.Jitter))
		}
		f.next[i] = MachinePacket{UE: i, Packet: Packet{Arrival: t, Bytes: f.Bytes}}
	}
	// Stagger dominates jitter only when Jitter < Period/N; sort so Next
	// honors the non-decreasing-arrival contract in every regime.
	sort.SliceStable(f.next, func(a, b int) bool {
		if f.next[a].Arrival != f.next[b].Arrival {
			return f.next[a].Arrival < f.next[b].Arrival
		}
		return f.next[a].UE < f.next[b].UE
	})
	f.cycle++
}

// Next implements Generator, dropping the machine attribution.
func (f *Fleet) Next() Packet { return f.NextMachine().Packet }

// Name implements Generator.
func (f *Fleet) Name() string { return fmt.Sprintf("fleet(%d×%v)", f.N, f.Period) }

// TakeFleet drains n packets from a fleet with machine attribution.
func TakeFleet(f *Fleet, n int) []MachinePacket {
	out := make([]MachinePacket, n)
	for i := range out {
		out[i] = f.NextMachine()
	}
	return out
}

// Take drains n packets from a generator.
func Take(g Generator, n int) []Packet {
	out := make([]Packet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
