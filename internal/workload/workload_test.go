package workload

import (
	"math"
	"testing"

	"urllcsim/internal/sim"
)

func TestUniformOnePerPeriod(t *testing.T) {
	rng := sim.NewRNG(1)
	g := NewUniform(2*sim.Millisecond, 64, rng)
	pkts := Take(g, 1000)
	for i, p := range pkts {
		lo := sim.Time(int64(i) * int64(2*sim.Millisecond))
		hi := lo.Add(2 * sim.Millisecond)
		if p.Arrival < lo || p.Arrival >= hi {
			t.Fatalf("packet %d at %v outside its period [%v,%v)", i, p.Arrival, lo, hi)
		}
		if p.ID != i || p.Bytes != 64 {
			t.Fatalf("packet meta wrong: %+v", p)
		}
	}
	// Offsets must actually be spread: mean offset ≈ period/2.
	var sum float64
	for i, p := range pkts {
		sum += float64(p.Arrival - sim.Time(int64(i)*int64(2*sim.Millisecond)))
	}
	mean := sum / float64(len(pkts))
	if math.Abs(mean-1e6)/1e6 > 0.1 {
		t.Fatalf("mean offset %vns, want ≈1ms", mean)
	}
}

func TestPoissonInterarrivals(t *testing.T) {
	rng := sim.NewRNG(2)
	g := NewPoisson(sim.Millisecond, 32, rng)
	pkts := Take(g, 20000)
	prev := sim.Time(0)
	var sum float64
	for _, p := range pkts {
		if p.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		sum += float64(p.Arrival - prev)
		prev = p.Arrival
	}
	mean := sum / float64(len(pkts))
	if math.Abs(mean-1e6)/1e6 > 0.05 {
		t.Fatalf("mean interarrival %vns, want ≈1ms", mean)
	}
}

func TestPeriodicExactTicks(t *testing.T) {
	rng := sim.NewRNG(3)
	g := NewPeriodic(250*sim.Microsecond, 0, 288, rng)
	pkts := Take(g, 10)
	for i, p := range pkts {
		if p.Arrival != sim.Time(int64(i)*250000) {
			t.Fatalf("tick %d at %v", i, p.Arrival)
		}
	}
}

func TestPeriodicJitterBounded(t *testing.T) {
	rng := sim.NewRNG(4)
	g := NewPeriodic(sim.Millisecond, 100*sim.Microsecond, 10, rng)
	for i := 0; i < 1000; i++ {
		p := g.Next()
		base := sim.Time(int64(i) * int64(sim.Millisecond))
		if p.Arrival < base || p.Arrival >= base.Add(100*sim.Microsecond) {
			t.Fatalf("jittered tick %d at %v", i, p.Arrival)
		}
	}
}

func TestAudioFrames(t *testing.T) {
	g := AudioFrames(sim.NewRNG(5))
	p0, p1 := g.Next(), g.Next()
	if p1.Arrival-p0.Arrival != sim.Time(250*sim.Microsecond) {
		t.Fatalf("audio frame spacing = %v", p1.Arrival-p0.Arrival)
	}
	if p0.Bytes != 288 {
		t.Fatalf("audio frame size = %dB", p0.Bytes)
	}
}

func TestFleetStaggerAndOrder(t *testing.T) {
	rng := sim.NewRNG(8)
	const n, period = 8, 20 * sim.Millisecond
	f := NewFleet(n, period, 0, 32, rng)
	pkts := TakeFleet(f, 3*n)
	prev := sim.Time(-1)
	seen := map[int]int{}
	for i, p := range pkts {
		if p.Arrival < prev {
			t.Fatalf("packet %d at %v before previous %v", i, p.Arrival, prev)
		}
		prev = p.Arrival
		if p.ID != i {
			t.Fatalf("packet %d has ID %d", i, p.ID)
		}
		seen[p.UE]++
		// Zero jitter: machine u of cycle c fires exactly at c·P + u·P/N.
		cycle, u := i/n, p.UE
		want := sim.Time(int64(cycle)*int64(period) + int64(period)*int64(u)/int64(n))
		if p.Arrival != want {
			t.Fatalf("machine %d cycle %d at %v, want %v", u, cycle, p.Arrival, want)
		}
	}
	for u := 0; u < n; u++ {
		if seen[u] != 3 {
			t.Fatalf("machine %d fired %d times, want 3", u, seen[u])
		}
	}
}

func TestFleetJitterIndependentOfN(t *testing.T) {
	// Machine i's jitter stream must not depend on fleet size: the same
	// base seed gives machine 2 the same draws in an 4-machine and an
	// 8-machine fleet (per-machine forked RNGs).
	const period, jit = 10 * sim.Millisecond, 200 * sim.Microsecond
	offsets := func(n int) []sim.Duration {
		f := NewFleet(n, period, jit, 16, sim.NewRNG(99))
		var out []sim.Duration
		for _, p := range TakeFleet(f, 5*n) {
			if p.UE == 2 {
				cycle := int64(p.Arrival) / int64(period)
				base := sim.Time(cycle*int64(period) + int64(period)*2/int64(n))
				out = append(out, sim.Duration(p.Arrival-base))
			}
		}
		return out
	}
	a, b := offsets(4), offsets(8)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("machine 2 fired %d/%d times, want 5/5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d jitter differs across fleet sizes: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= jit {
			t.Fatalf("cycle %d jitter %v outside [0,%v)", i, a[i], jit)
		}
	}
}

func TestGeneratorNames(t *testing.T) {
	rng := sim.NewRNG(6)
	for _, g := range []Generator{
		NewUniform(sim.Millisecond, 1, rng),
		NewPoisson(sim.Millisecond, 1, rng),
		NewPeriodic(sim.Millisecond, 0, 1, rng),
	} {
		if g.Name() == "" {
			t.Fatal("empty generator name")
		}
	}
}

func TestBadParamsPanic(t *testing.T) {
	rng := sim.NewRNG(7)
	for name, f := range map[string]func(){
		"uniform":  func() { NewUniform(0, 1, rng) },
		"poisson":  func() { NewPoisson(-1, 1, rng) },
		"periodic": func() { NewPeriodic(0, 0, 1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted bad params", name)
				}
			}()
			f()
		}()
	}
}
