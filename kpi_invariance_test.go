package urllcsim

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"urllcsim/internal/obs"
	"urllcsim/internal/sim"
	"urllcsim/internal/sweep"
)

// kpiShard runs one full-system replica with per-UE attribution and the slot
// ledger enabled, returning the registry (with its labeled families) and the
// ledger for the shard-ordered merge.
func kpiShard(t *testing.T, shard int, seed uint64) (*obs.Registry, []obs.SlotRecord) {
	t.Helper()
	rec := obs.NewRecorder()
	rec.EnableSlotLedger()
	sc, err := NewScenario(ScenarioConfig{
		Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2,
		Seed: seed, Deadline: 500 * time.Microsecond, Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	const packets, ues = 24, 3
	rng := sim.NewRNG(seed ^ 0x5EED)
	for i := 0; i < packets; i++ {
		at := time.Duration(i)*2*time.Millisecond + time.Duration(rng.UniformDuration(0, sim.Duration(2*time.Millisecond)))
		sc.SendUplinkFrom(i%ues, at, 32)
		sc.SendDownlinkFrom(i%ues, at, 32)
	}
	sc.Run(time.Duration(packets+60) * 2 * time.Millisecond)
	return rec.Metrics(), rec.Slots()
}

// TestLabeledMergeWorkerInvariance extends the sweep invariance contract to
// the dimensional layer: merging shard registries (now carrying per-UE
// counter/gauge/histogram families) and shard slot ledgers in shard order
// yields bit-identical results for 1, 2 and 4 workers.
func TestLabeledMergeWorkerInvariance(t *testing.T) {
	type out struct {
		reg   *obs.Registry
		slots []obs.SlotRecord
	}
	const shards = 8
	sweepOnce := func(workers int) (*obs.Registry, []byte) {
		res, err := sweep.Run(workers, shards, func(shard int) (out, error) {
			reg, slots := kpiShard(t, shard, sweep.Seed(7, shard))
			return out{reg, slots}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		regs := make([]*obs.Registry, shards)
		ledgers := make([][]obs.SlotRecord, shards)
		for i, r := range res {
			regs[i], ledgers[i] = r.reg, r.slots
		}
		var buf bytes.Buffer
		if err := obs.WriteSlotsJSONL(&buf, obs.MergeSlotLedgers(ledgers...), "inv"); err != nil {
			t.Fatal(err)
		}
		return sweep.MergeRegistries(regs), buf.Bytes()
	}

	goldenReg, goldenSlots := sweepOnce(1)
	if !hasFamily(goldenReg, "pkt.by_ue") || !hasFamily(goldenReg, "lat.by_ue") {
		t.Fatalf("merged registry lost its labeled families:\n%s", goldenReg.Summary())
	}
	for _, workers := range []int{2, 4} {
		reg, slots := sweepOnce(workers)
		if !reflect.DeepEqual(goldenReg, reg) {
			t.Errorf("%d workers: merged registry differs from sequential:\n-- 1 worker --\n%s-- %d workers --\n%s",
				workers, goldenReg.Summary(), workers, reg.Summary())
		}
		if !bytes.Equal(goldenSlots, slots) {
			t.Errorf("%d workers: merged slot ledger not byte-identical to sequential", workers)
		}
	}
}

// hasFamily reports whether the registry carries a labeled family with rows.
func hasFamily(reg *obs.Registry, name string) bool {
	for _, f := range reg.Families() {
		if f.FamilyName() == name && len(f.Rows()) > 0 {
			return true
		}
	}
	return false
}
