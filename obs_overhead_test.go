package urllcsim_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"urllcsim"
	"urllcsim/internal/obs"
)

// overheadRun is one fixed full-stack scenario (64 packets, DDDU/0.5ms/USB2)
// driven against the given recorder; nil means observability disabled.
func overheadRun(rec *obs.Recorder) error {
	sc, err := urllcsim.NewScenario(urllcsim.ScenarioConfig{
		Pattern: urllcsim.PatternDDDU, SlotScale: urllcsim.Slot0p5ms, Radio: urllcsim.RadioUSB2,
		Seed: 1, Obs: rec,
	})
	if err != nil {
		return err
	}
	const packets = 32
	for i := 0; i < packets; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		sc.SendUplink(at+137*time.Microsecond, 32)
		sc.SendDownlink(at+731*time.Microsecond, 32)
	}
	if rs := sc.Run((packets + 50) * 2 * time.Millisecond); len(rs) != 2*packets {
		return fmt.Errorf("resolved %d results, want %d", len(rs), 2*packets)
	}
	return nil
}

// TestTracingOverheadInterleaved is the honest form of the overhead
// measurement: disabled, enabled and sampled runs are interleaved round-robin
// so clock drift, thermal state and GC pressure hit all three arms equally,
// and the median is compared instead of a single timing. Sequential benchmark
// groups on a loaded machine showed ~13% run-to-run variance on *identical*
// code; the interleaved median is stable to a couple of percent.
//
// The assertion is deliberately loose — a tripwire for reintroducing a
// per-event cost on the disabled or enabled path (the pre-optimisation tree
// measured +35% here), not a micro-benchmark gate. The measured numbers go to
// the test log; the README overhead table quotes them.
func TestTracingOverheadInterleaved(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short")
	}
	recE := obs.NewRecorder()
	recS := obs.NewRecorder()
	recS.SetSampling(1.0/16, 1)
	// Warm both recorders to steady state so the loop measures recycled
	// slabs, not first-fill growth.
	if err := overheadRun(recE); err != nil {
		t.Fatal(err)
	}
	if err := overheadRun(recS); err != nil {
		t.Fatal(err)
	}
	rounds := 120
	if testing.Verbose() {
		rounds = 400
	}
	var dT, eT, sT []float64
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		if err := overheadRun(nil); err != nil {
			t.Fatal(err)
		}
		t1 := time.Now()
		recE.Reset()
		if err := overheadRun(recE); err != nil {
			t.Fatal(err)
		}
		t2 := time.Now()
		recS.Reset()
		if err := overheadRun(recS); err != nil {
			t.Fatal(err)
		}
		t3 := time.Now()
		dT = append(dT, t1.Sub(t0).Seconds())
		eT = append(eT, t2.Sub(t1).Seconds())
		sT = append(sT, t3.Sub(t2).Seconds())
	}
	med := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	d, e, s := med(dT), med(eT), med(sT)
	t.Logf("median per run: disabled %.0fµs, enabled %.0fµs (+%.1f%%), sampled 1/16 %.0fµs (+%.1f%%)",
		d*1e6, e*1e6, (e/d-1)*100, s*1e6, (s/d-1)*100)
	if e > d*1.5 {
		t.Errorf("enabled tracing median %.0fµs is more than 1.5× the disabled median %.0fµs", e*1e6, d*1e6)
	}
	if s > e*1.1 {
		t.Errorf("sampled median %.0fµs exceeds full-tracing median %.0fµs — sampling made tracing slower", s*1e6, e*1e6)
	}
}
