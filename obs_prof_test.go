package urllcsim

import (
	"reflect"
	"testing"
	"time"

	"urllcsim/internal/obs"
	"urllcsim/internal/obs/prof"
)

// profScenario runs the reference scenario with the given recorder and an
// optional self-profiler attached, returning everything the simulation
// produced plus the profile report.
func profScenario(t *testing.T, rec *obs.Recorder, profile bool) ([]PacketResult, *obs.Recorder, *prof.Report) {
	t.Helper()
	sc, err := NewScenario(ScenarioConfig{
		Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2,
		Seed: 7, Deadline: 500 * time.Microsecond, Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var p *prof.Profiler
	if profile {
		p = prof.Attach(sc.Engine())
	}
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		sc.SendUplink(at+137*time.Microsecond, 32)
		sc.SendDownlink(at+731*time.Microsecond, 32)
	}
	results := sc.Run(100 * 2 * time.Millisecond)
	var rep *prof.Report
	if p != nil {
		rep = p.Finish()
	}
	return results, rec, rep
}

// TestProfilerDeterminism is the in-process form of the PR 1 byte-identical
// contract, extended to the self-profiler: attaching it must not change one
// bit of what the simulation computes — packet results, recorded spans,
// outcomes and the metrics registry must all be identical with and without
// the profiler, even though the profiler rides the same engine sink dispatch
// the recorder uses. (The cmd-level equivalent: `urllcsim` with and without
// -prof-out prints identical scenario output, since -prof-out writes only to
// its own file and stderr.)
func TestProfilerDeterminism(t *testing.T) {
	plainResults, plainRec, _ := profScenario(t, obs.NewRecorder(), false)
	profResults, profRec, rep := profScenario(t, obs.NewRecorder(), true)

	if !reflect.DeepEqual(plainResults, profResults) {
		t.Fatal("packet results differ with the profiler attached")
	}
	if !reflect.DeepEqual(plainRec.Spans(), profRec.Spans()) {
		t.Fatal("recorded spans differ with the profiler attached")
	}
	if !reflect.DeepEqual(plainRec.Outcomes(), profRec.Outcomes()) {
		t.Fatal("recorded outcomes differ with the profiler attached")
	}
	if a, b := plainRec.Metrics().Summary(), profRec.Metrics().Summary(); a != b {
		t.Fatalf("metrics registries diverged:\n--- without profiler ---\n%s--- with profiler ---\n%s", a, b)
	}
	if rep == nil || rep.Events == 0 {
		t.Fatal("profiler observed nothing while staying invisible")
	}
}

// TestProfilerPartition asserts the profiler's accounting invariant on a
// full-stack run: per-event-type wall times partition the attributed
// event-loop wall time exactly (they are closed intervals summed in integer
// nanoseconds), the attributed time never exceeds the attach-to-finish wall
// time, and the per-type counts sum to the engine's own step count.
func TestProfilerPartition(t *testing.T) {
	_, _, rep := profScenario(t, nil, true)
	if len(rep.Types) == 0 {
		t.Fatal("no event types profiled")
	}
	var wall int64
	var count uint64
	for _, s := range rep.Types {
		if s.WallNs < 0 {
			t.Fatalf("%s: negative wall time %d", s.Key, s.WallNs)
		}
		wall += s.WallNs
		count += s.Count
	}
	if wall != rep.AttributedNs {
		t.Fatalf("per-type wall sums to %d ns, attributed total is %d ns (Δ %d)",
			wall, rep.AttributedNs, wall-rep.AttributedNs)
	}
	if rep.AttributedNs > rep.WallNs {
		t.Fatalf("attributed %d ns exceeds total wall %d ns", rep.AttributedNs, rep.WallNs)
	}
	if count != rep.Events {
		t.Fatalf("per-type counts sum to %d, events total is %d", count, rep.Events)
	}
	if rep.Heap.Pushes < rep.Events {
		t.Fatalf("heap pushes %d < fired events %d", rep.Heap.Pushes, rep.Events)
	}
	// Every pop fires an event (the wheel excises cancellations instead of
	// popping them), so the profiled window's pops equal its event count —
	// the engine's books and the profiler's attribution must agree exactly.
	if rep.Heap.Pops != rep.Events {
		t.Fatalf("heap pops %d != fired events %d", rep.Heap.Pops, rep.Events)
	}
	if rep.Heap.Pushes < rep.Heap.Pops+rep.Heap.Cancels {
		t.Fatalf("heap pushes %d < pops %d + cancels %d", rep.Heap.Pushes, rep.Heap.Pops, rep.Heap.Cancels)
	}
	// The reference scenario advances 80 packets × 2 ms of virtual time in
	// well under a second of wall time on any machine: the ratio must be
	// finite and positive, and events/sec must be consistent with the totals.
	if rep.SimWallRatio <= 0 {
		t.Fatalf("sim/wall ratio %f not positive", rep.SimWallRatio)
	}
	wantEPS := float64(rep.Events) / (float64(rep.AttributedNs) / 1e9)
	if diff := rep.EventsPerSec - wantEPS; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("events/sec %f inconsistent with totals (want %f)", rep.EventsPerSec, wantEPS)
	}
}
