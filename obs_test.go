package urllcsim

import (
	"sort"
	"testing"
	"time"

	"urllcsim/internal/obs"
	"urllcsim/internal/sim"
)

// TestSpanPartition is the structural invariant behind the Fig. 3 journey:
// for every first-attempt delivery, the per-packet spans recorded by the
// observability layer must tile the interval from offer to delivery exactly —
// no gaps, no overlaps — so their durations sum to the reported one-way
// latency. Checked for grant-based UL, grant-free UL and DL across seeds.
func TestSpanPartition(t *testing.T) {
	cases := []struct {
		name      string
		grantFree bool
		uplink    bool
	}{
		{"ul-grant-based", false, true},
		{"ul-grant-free", true, true},
		{"dl", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				rec := obs.NewRecorder()
				sc, err := NewScenario(ScenarioConfig{
					Pattern:   PatternDDDU,
					SlotScale: Slot0p5ms,
					GrantFree: tc.grantFree,
					Radio:     RadioUSB2,
					Seed:      seed,
					Obs:       rec,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 20; i++ {
					at := time.Duration(i)*2*time.Millisecond + 337*time.Microsecond
					if tc.uplink {
						sc.SendUplink(at, 32)
					} else {
						sc.SendDownlink(at, 32)
					}
				}
				results := sc.Run(100 * time.Millisecond)
				if len(results) == 0 {
					t.Fatalf("seed %d: no packets resolved", seed)
				}
				checked := 0
				for _, r := range results {
					// Retransmitted packets revisit MAC/PHY, so their spans
					// legitimately overlap the HARQ round-trip; the exact
					// partition holds for clean first-attempt deliveries.
					if !r.Delivered || r.Attempts != 1 {
						continue
					}
					verifyPartition(t, seed, r, rec.PacketSpans(r.ID))
					checked++
				}
				if checked == 0 {
					t.Fatalf("seed %d: no first-attempt deliveries to check", seed)
				}
			}
		})
	}
}

func verifyPartition(t *testing.T, seed uint64, r PacketResult, spans []obs.Span) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatalf("seed %d pkt %d: no spans recorded", seed, r.ID)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var sum sim.Duration
	for i, s := range spans {
		sum += s.Dur
		if i == 0 {
			continue
		}
		if prev := spans[i-1]; s.Start != prev.End() {
			t.Fatalf("seed %d pkt %d: gap/overlap between %q (ends %v) and %q (starts %v)",
				seed, r.ID, prev.Step, prev.End(), s.Step, s.Start)
		}
	}
	if got, want := time.Duration(sum), r.Latency; got != want {
		t.Fatalf("seed %d pkt %d: span durations sum to %v, latency is %v (Δ %v)",
			seed, r.ID, got, want, got-want)
	}
	if tiled := spans[len(spans)-1].End().Sub(spans[0].Start); time.Duration(tiled) != r.Latency {
		t.Fatalf("seed %d pkt %d: spans tile %v, latency is %v",
			seed, r.ID, time.Duration(tiled), r.Latency)
	}
}

// BenchmarkTracingOverhead compares a full-stack scenario run with
// observability disabled (nil recorder — the default) against the same run
// with a live recorder capturing spans, counters and slot snapshots. The
// Disabled case must stay within noise of the pre-observability simulator:
// the entire hot path is nil-receiver method calls. Enabled reuses one
// recorder across ops via Reset — the pooled steady state a long sweep or
// service sees, where span/outcome/event storage and every registry
// instrument are already allocated. Sampled adds a 1/16 deterministic
// head sample on top, the configuration `-sample-rate 0.0625` runs.
func BenchmarkTracingOverhead(b *testing.B) {
	run := func(b *testing.B, rec *obs.Recorder) {
		sc, err := NewScenario(ScenarioConfig{
			Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2,
			Seed: 1, Obs: rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		const packets = 32
		for i := 0; i < packets; i++ {
			at := time.Duration(i) * 2 * time.Millisecond
			sc.SendUplink(at+137*time.Microsecond, 32)
			sc.SendDownlink(at+731*time.Microsecond, 32)
		}
		if rs := sc.Run((packets + 50) * 2 * time.Millisecond); len(rs) != 2*packets {
			b.Fatalf("resolved %d/%d", len(rs), 2*packets)
		}
	}
	b.Run("Disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("Enabled", func(b *testing.B) {
		b.ReportAllocs()
		rec := obs.NewRecorder()
		run(b, rec) // warm: fill span/outcome capacity, register instruments
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Reset()
			run(b, rec)
		}
	})
	b.Run("Sampled", func(b *testing.B) {
		b.ReportAllocs()
		rec := obs.NewRecorder()
		rec.SetSampling(1.0/16, 1)
		run(b, rec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Reset()
			run(b, rec)
		}
	})
}
