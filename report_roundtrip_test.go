package urllcsim

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"

	"urllcsim/internal/obs"
	"urllcsim/internal/obs/analyze"
	"urllcsim/internal/sim"
)

// scrapeOnce fetches /metrics once and discards the body.
func scrapeOnce(addr string) error {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape status %d", resp.StatusCode)
	}
	return nil
}

// runAudited runs a small two-direction scenario with a recorder attached
// and returns the recorder.
func runAudited(t testing.TB, seed uint64, deadline time.Duration) *obs.Recorder {
	t.Helper()
	rec := obs.NewRecorder()
	sc, err := NewScenario(ScenarioConfig{
		Pattern:   PatternDDDU,
		SlotScale: Slot0p5ms,
		Radio:     RadioUSB2,
		Seed:      seed,
		Deadline:  deadline,
		Obs:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	const packets = 24
	for i := 0; i < packets; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		sc.SendUplink(at+137*time.Microsecond, 32)
		sc.SendDownlink(at+731*time.Microsecond, 32)
	}
	if rs := sc.Run((packets + 50) * 2 * time.Millisecond); len(rs) != 2*packets {
		t.Fatalf("resolved %d/%d packets", len(rs), 2*packets)
	}
	return rec
}

// TestReportRoundTrip extends TestSpanPartition across the JSONL boundary:
// a scenario's trace is exported, re-ingested, and audited. The per-source
// budget of every first-attempt delivery must sum exactly — to the
// nanosecond — to the one-way latency recorded in its outcome, and the
// offline audit must equal the in-process one structurally.
func TestReportRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		rec := runAudited(t, seed, 500*time.Microsecond)

		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, rec); err != nil {
			t.Fatal(err)
		}
		tr, err := analyze.ReadJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		direct := analyze.FromRecorder(rec)
		if !reflect.DeepEqual(tr, direct) {
			t.Fatalf("seed %d: JSONL round trip is not lossless", seed)
		}

		audit := analyze.Run(tr, "roundtrip", 500*sim.Microsecond)
		if len(audit.Journeys) == 0 {
			t.Fatalf("seed %d: audit saw no journeys", seed)
		}
		exact := 0
		for _, j := range audit.Journeys {
			if !j.HasOutcome {
				t.Fatalf("seed %d pkt %d: journey has no outcome record", seed, j.Packet)
			}
			if !j.Delivered || j.Attempts != 1 {
				continue // HARQ retransmissions overlap; the exact sum is a first-attempt invariant
			}
			var bySource sim.Duration
			for _, v := range j.BySource {
				bySource += v
			}
			if bySource != j.SpanSum {
				t.Fatalf("seed %d pkt %d: source split %v ≠ span sum %v", seed, j.Packet, bySource, j.SpanSum)
			}
			if j.SpanSum != j.Latency {
				t.Fatalf("seed %d pkt %d: budget sums to %v, outcome latency is %v (Δ %vns)",
					seed, j.Packet, j.SpanSum, j.Latency, int64(j.SpanSum-j.Latency))
			}
			if !j.BudgetExact() {
				t.Fatalf("seed %d pkt %d: BudgetExact false despite equal sums", seed, j.Packet)
			}
			exact++
		}
		if exact == 0 {
			t.Fatalf("seed %d: no first-attempt deliveries audited", seed)
		}

		// The offline audit must agree with one built straight from the
		// recorder: same verdict counts, budgets and quantiles per direction.
		inProc := analyze.Run(direct, "roundtrip", 500*sim.Microsecond)
		for _, d := range audit.Dirs {
			o := inProc.Dir(d.Dir)
			if o == nil {
				t.Fatalf("seed %d: dir %v missing from in-process audit", seed, d.Dir)
			}
			if d.N != o.N || d.Delivered != o.Delivered || d.Lost != o.Lost ||
				d.DeadlineMet != o.DeadlineMet || d.Missed != o.Missed ||
				d.BySource != o.BySource || d.MissDominant != o.MissDominant {
				t.Fatalf("seed %d dir %v: offline audit diverges from in-process audit", seed, d.Dir)
			}
			for _, q := range []float64{0.5, 0.99, 0.999, 0.99999} {
				if d.Hist.Quantile(q) != o.Hist.Quantile(q) {
					t.Fatalf("seed %d dir %v: q%.5f differs across the JSONL boundary", seed, d.Dir, q)
				}
			}
		}

		// Deadline verdicts recorded live by the node layer match the
		// offline recount.
		reg := rec.Metrics()
		var liveMet, liveMiss int64
		for _, c := range reg.Counters() {
			switch c.Name {
			case "pkt.deadline_met":
				liveMet = c.Value()
			case "pkt.deadline_miss":
				liveMiss = c.Value()
			}
		}
		var auditMet, auditMiss int64
		for _, d := range audit.Dirs {
			auditMet += d.DeadlineMet
			auditMiss += d.Missed
		}
		if liveMet != auditMet || liveMiss != auditMiss {
			t.Fatalf("seed %d: live verdict counters met=%d miss=%d, offline audit met=%d miss=%d",
				seed, liveMet, liveMiss, auditMet, auditMiss)
		}
	}
}

// TestLiveScrapeDuringRun drives a real scenario with a telemetry server
// attached and scrapes it mid-run from another goroutine: the simulation's
// results must be identical to an unserved run (the lock changes timing of
// nothing in virtual time), and every scrape must be valid.
func TestLiveScrapeDuringRun(t *testing.T) {
	recPlain := runAudited(t, 7, 500*time.Microsecond)

	recServed := obs.NewRecorder()
	srv, err := obs.Serve("127.0.0.1:0", recServed)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sc, err := NewScenario(ScenarioConfig{
		Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2,
		Seed: 7, Deadline: 500 * time.Microsecond, Obs: recServed,
	})
	if err != nil {
		t.Fatal(err)
	}
	const packets = 24
	for i := 0; i < packets; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		sc.SendUplink(at+137*time.Microsecond, 32)
		sc.SendDownlink(at+731*time.Microsecond, 32)
	}
	stop := make(chan struct{})
	scraped := make(chan error, 1)
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				if err := scrapeOnce(srv.Addr); err != nil {
					scraped <- err
					return
				}
			}
		}
	}()
	rs := sc.Run((packets + 50) * 2 * time.Millisecond)
	close(stop)
	if err, ok := <-scraped; ok && err != nil {
		t.Fatalf("scrape during run: %v", err)
	}
	if len(rs) != 2*packets {
		t.Fatalf("resolved %d/%d packets", len(rs), 2*packets)
	}

	// Virtual-time determinism survives the live lock: identical audits.
	a := analyze.Run(analyze.FromRecorder(recPlain), "x", 500*sim.Microsecond)
	b := analyze.Run(analyze.FromRecorder(recServed), "x", 500*sim.Microsecond)
	if !reflect.DeepEqual(a.Journeys, b.Journeys) {
		t.Fatal("journeys differ between served and unserved runs of the same seed")
	}
}

// BenchmarkLiveEndpointOverhead measures the scrape-path tax on the
// simulation hot loop. NoServer is the shipping default: the only cost is a
// nil pointer comparison per registry operation, so it must stay within
// noise of the plain recorder benchmark (see BenchmarkTracingOverhead).
// ServerAttached pays the uncontended mutex.
func BenchmarkLiveEndpointOverhead(b *testing.B) {
	run := func(b *testing.B, serve bool) {
		for i := 0; i < b.N; i++ {
			rec := obs.NewRecorder()
			if serve {
				srv, err := obs.Serve("127.0.0.1:0", rec)
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
			}
			sc, err := NewScenario(ScenarioConfig{
				Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2,
				Seed: 1, Deadline: 500 * time.Microsecond, Obs: rec,
			})
			if err != nil {
				b.Fatal(err)
			}
			const packets = 32
			for p := 0; p < packets; p++ {
				at := time.Duration(p) * 2 * time.Millisecond
				sc.SendUplink(at+137*time.Microsecond, 32)
				sc.SendDownlink(at+731*time.Microsecond, 32)
			}
			if rs := sc.Run((packets + 50) * 2 * time.Millisecond); len(rs) != 2*packets {
				b.Fatalf("resolved %d/%d", len(rs), 2*packets)
			}
		}
	}
	b.Run("NoServer", func(b *testing.B) { run(b, false) })
	b.Run("ServerAttached", func(b *testing.B) { run(b, true) })
}
