package urllcsim

import (
	"bytes"
	"testing"
	"time"

	"urllcsim/internal/obs"
	"urllcsim/internal/obs/analyze"
	"urllcsim/internal/sim"
	"urllcsim/internal/sweep"
)

// tailScenario runs one deadline-audited full-stack replica with the given
// span sample rate (1 disables sampling) and returns its recorder.
func tailScenario(t *testing.T, seed uint64, rate float64) *obs.Recorder {
	t.Helper()
	rec := obs.NewRecorder()
	if rate < 1 {
		rec.SetSampling(rate, seed)
	}
	sc, err := NewScenario(ScenarioConfig{
		Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2,
		Seed: seed, Deadline: 500 * time.Microsecond, Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	const packets = 48
	rng := sim.NewRNG(seed ^ 0x7A11)
	for i := 0; i < packets; i++ {
		at := time.Duration(i)*2*time.Millisecond + time.Duration(rng.UniformDuration(0, sim.Duration(2*time.Millisecond)))
		sc.SendUplinkFrom(i%3, at, 32)
		sc.SendDownlinkFrom(i%3, at, 32)
	}
	sc.Run(time.Duration(packets+60) * 2 * time.Millisecond)
	return rec
}

// TestSamplingExactTail is the sampler's headline guarantee: span sampling
// thins the retained journey log and nothing else. The deadline audit
// derives delivery, loss, deadline verdicts and the latency tail from
// outcomes — which are never sampled — so every outcome-derived number is
// identical at any rate, including rate 0.
func TestSamplingExactTail(t *testing.T) {
	const seed = 5
	fullRec := tailScenario(t, seed, 1)
	full := analyze.Run(analyze.FromRecorder(fullRec), "tail", 500*sim.Microsecond)
	for _, rate := range []float64{0.25, 0.05, 0} {
		rec := tailScenario(t, seed, rate)
		sampled := analyze.Run(analyze.FromRecorder(rec), "tail", 500*sim.Microsecond)
		// Rate 0 has no wire representation distinct from "absent" (the
		// meta field is omitempty), so the audit normalises it to 1.
		wantRate := rate
		if rate == 0 {
			wantRate = 1
		}
		if sampled.SampleRate != wantRate {
			t.Fatalf("rate %g: audit SampleRate = %g, want %g", rate, sampled.SampleRate, wantRate)
		}
		if len(sampled.Dirs) != len(full.Dirs) {
			t.Fatalf("rate %g: %d directions, want %d", rate, len(sampled.Dirs), len(full.Dirs))
		}
		for i, want := range full.Dirs {
			got := sampled.Dirs[i]
			if got.N != want.N || got.Delivered != want.Delivered || got.Lost != want.Lost {
				t.Fatalf("rate %g dir %v: packet counts %d/%d/%d, want %d/%d/%d",
					rate, got.Dir, got.N, got.Delivered, got.Lost, want.N, want.Delivered, want.Lost)
			}
			if got.DeadlineMet != want.DeadlineMet || got.Missed != want.Missed {
				t.Fatalf("rate %g dir %v: deadline met/missed %d/%d, want %d/%d",
					rate, got.Dir, got.DeadlineMet, got.Missed, want.DeadlineMet, want.Missed)
			}
			if got.Rel.Value() != want.Rel.Value() {
				t.Fatalf("rate %g dir %v: reliability %v, want %v", rate, got.Dir, got.Rel.Value(), want.Rel.Value())
			}
			for _, q := range []float64{0.5, 0.99, 0.99999, 1} {
				if g, w := got.Hist.Quantile(q), want.Hist.Quantile(q); g != w {
					t.Fatalf("rate %g dir %v: p%g = %d, want %d", rate, got.Dir, q*100, g, w)
				}
			}
		}
		// Journeys come from outcomes, so every packet still has one; the
		// span log underneath is what thins.
		if len(sampled.Journeys) != len(full.Journeys) {
			t.Fatalf("rate %g: %d journeys, want %d (outcomes are never sampled)",
				rate, len(sampled.Journeys), len(full.Journeys))
		}
		if got, max := len(rec.Spans()), len(fullRec.Spans())/2; got > max {
			t.Fatalf("rate %g: retained %d spans of %d — sampling did not thin the log",
				rate, got, len(fullRec.Spans()))
		}
	}
}

// TestSampledSweepWorkerInvariance extends the sweep bit-identity contract
// to sampled runs: the admission verdict is a pure function of (shard seed,
// packet id), so 1, 2 and 4 workers produce byte-identical merged audit
// reports at any sample rate.
func TestSampledSweepWorkerInvariance(t *testing.T) {
	const shards, base, rate = 6, 9, 0.2
	reportFor := func(workers int) []byte {
		traces, err := sweep.Run(workers, shards, func(shard int) (*analyze.Trace, error) {
			rec := tailScenario(t, sweep.Seed(base, shard), rate)
			return analyze.FromRecorder(rec), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		merged := analyze.MergeTraces(traces...)
		audit := analyze.Run(merged, "sweep", 500*sim.Microsecond)
		var buf bytes.Buffer
		if err := analyze.WriteMarkdown(&buf, []*analyze.Audit{audit}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	golden := reportFor(1)
	if !bytes.Contains(golden, []byte("Effective span sample rate: 0.2")) {
		t.Fatalf("sampled report does not state its rate:\n%s", golden)
	}
	for _, workers := range []int{2, 4} {
		if got := reportFor(workers); !bytes.Equal(got, golden) {
			t.Fatalf("%d-worker sampled report differs from 1-worker report", workers)
		}
	}
}
