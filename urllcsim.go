// Package urllcsim is a system-level latency simulator and analysis toolkit
// for 5G URLLC, reproducing "Ultra-Reliable Low-Latency in 5G: A Close
// Reality or a Distant Goal?" (HotNets '24).
//
// It answers two kinds of questions:
//
//   - Analytic: what is the worst-case one-way latency of a 5G configuration
//     (TDD pattern, mini-slot, FDD × grant-based/grant-free/DL), and does it
//     meet the 0.5 ms URLLC deadline? (The paper's Table 1 / Fig. 4.)
//
//   - Simulated: what latency distribution does a complete software 5G
//     stack deliver — protocol waits, per-layer processing, RLC queueing,
//     SR/grant handshakes, SDR bus transfer and OS jitter included? (The
//     paper's Table 2 / Fig. 5 / Fig. 6.)
//
// The simulation carries real bytes through real codecs: SDAP/PDCP (with
// AES-CTR ciphering and AES-CMAC integrity), RLC UM segmentation, MAC
// subPDU multiplexing, CRC-24 transport blocks, convolutional FEC and QAM
// over an AWGN/Rayleigh/blockage channel.
//
// Quick start:
//
//	sc, err := urllcsim.NewScenario(urllcsim.ScenarioConfig{
//	    Pattern:   urllcsim.PatternDDDU,
//	    SlotScale: urllcsim.Slot0p5ms,
//	    GrantFree: false,
//	    Radio:     urllcsim.RadioUSB2,
//	})
//	// offer traffic …
//	sc.SendUplink(0, 32)
//	results := sc.Run(100 * time.Millisecond)
package urllcsim

import (
	"fmt"
	"time"

	"urllcsim/internal/channel"
	"urllcsim/internal/core"
	"urllcsim/internal/node"
	"urllcsim/internal/nr"
	"urllcsim/internal/obs"
	"urllcsim/internal/proc"
	"urllcsim/internal/radio"
	"urllcsim/internal/sched"
	"urllcsim/internal/sim"
)

// Pattern names a TDD/duplexing configuration.
type Pattern string

// The configurations analysed by the paper.
const (
	PatternDDDU     Pattern = "DDDU"      // the §7 testbed pattern
	PatternDM       Pattern = "DM"        // the only feasible minimal Common Configuration
	PatternMU       Pattern = "MU"        //
	PatternDU       Pattern = "DU"        //
	PatternMiniSlot Pattern = "mini-slot" // non-slot-based scheduling
	PatternFDD      Pattern = "FDD"       // paired full-duplex carriers
)

// SlotScale selects the numerology by slot duration.
type SlotScale int

const (
	Slot1ms    SlotScale = iota // µ0, 15 kHz
	Slot0p5ms                   // µ1, 30 kHz (the testbed)
	Slot0p25ms                  // µ2, 60 kHz (the URLLC enabler in FR1)
	Slot125us                   // µ3, 120 kHz (FR2)
)

func (s SlotScale) mu() nr.Numerology {
	switch s {
	case Slot1ms:
		return nr.Mu0
	case Slot0p5ms:
		return nr.Mu1
	case Slot0p25ms:
		return nr.Mu2
	case Slot125us:
		return nr.Mu3
	default:
		return nr.Mu1
	}
}

// RadioKind selects the radio-head front-haul.
type RadioKind int

const (
	RadioUSB2 RadioKind = iota // USRP B210 over USB 2.0 (the testbed)
	RadioUSB3                  // USRP B210 over USB 3.0
	RadioPCIe                  // PCIe SDR
	RadioNone                  // ideal radio (no bus/conversion cost)
)

// ScenarioConfig configures a full-system simulation.
type ScenarioConfig struct {
	Pattern   Pattern
	SlotScale SlotScale
	GrantFree bool
	Radio     RadioKind

	// CGUnits shares the grant-free allocation: each UL slot carries
	// CGUnits contention units, every grant-free transmission picks one at
	// random, and two UEs on the same unit collide and retry after a
	// random backoff (resolved in-sim). 0 keeps the legacy dedicated
	// allocation with no contention. Only meaningful with GrantFree.
	CGUnits int

	// CGBackoffSlots is the collision backoff window in UL opportunities;
	// 0 → 8. Only meaningful with CGUnits > 0.
	CGBackoffSlots int

	// RoundRobin orders eligible SRs round-robin across UEs at each
	// scheduling tick instead of strict SR-reception order — the fairness
	// a many-UE cell needs so one backlogged UE cannot capture every UL
	// slot.
	RoundRobin bool

	// RTKernel applies a PREEMPT_RT OS-jitter profile (§6 mitigation).
	RTKernel bool

	// SNRdB is the static channel SNR; 0 → 25 dB. Use BlockageChannel for
	// the mmWave reliability experiments.
	SNRdB float64

	// BlockageChannel enables the FR2 LoS/NLoS channel.
	BlockageChannel bool

	// MarginSlots is the scheduler's radio-readiness lead; −1 → 1.
	MarginSlots int

	// HARQMaxTx bounds transmissions per packet; 0 → 3.
	HARQMaxTx int

	// HARQFeedback models the DL ACK/NACK loop explicitly: retransmissions
	// wait for the NACK to travel back through a UL opportunity.
	HARQFeedback bool

	// UEs is the processing-load UE count; 0 → 1.
	UEs int

	// Seed makes runs reproducible; runs with equal seeds are identical.
	Seed uint64

	// Deadline, when positive, audits every packet against this one-way
	// latency budget (use 500µs for the paper's URLLC bound): the obs
	// registry gains pkt.deadline_met / pkt.deadline_miss counters plus
	// budget.miss.<source> attribution of each miss to its dominant
	// latency source. Zero keeps the run unaudited.
	Deadline time.Duration

	// Obs, when non-nil, collects structured per-packet spans, named
	// counters/gauges and slot-aligned metric snapshots during the run;
	// export them with the internal/obs writers (JSONL, Chrome
	// trace-event JSON for Perfetto, CSV). Nil disables observability at
	// near-zero cost and changes nothing about the simulation.
	Obs *obs.Recorder
}

// PacketResult is the fate of one offered packet.
type PacketResult struct {
	ID        int
	Uplink    bool
	Delivered bool
	Latency   time.Duration
	Attempts  int
	// ProtocolShare…RadioShare split the journey across the paper's three
	// latency sources (fractions of the accounted time).
	ProtocolShare, ProcessingShare, RadioShare float64

	bd core.Breakdown
}

// Journey renders the Fig. 3-style breakdown table. Formatting is deferred
// to the call: a run that never prints journeys (sweeps, benchmarks, KPI
// pipelines) pays nothing for them, which keeps the always-on tracing
// overhead down to the record path itself.
func (r *PacketResult) Journey() string {
	return r.bd.String()
}

// Scenario is a configured, runnable system.
type Scenario struct {
	sys *node.System
	cfg ScenarioConfig
}

// NewScenario builds a scenario.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	mu := cfg.SlotScale.mu()
	grid, ulGrid, err := buildGrids(cfg.Pattern, mu)
	if err != nil {
		return nil, err
	}
	var head *radio.Head
	switch cfg.Radio {
	case RadioUSB2:
		head = radio.B210(radio.USB2())
	case RadioUSB3:
		head = radio.B210(radio.USB3())
	case RadioPCIe:
		head = radio.LowLatencySDR()
	case RadioNone:
		head = nil
	default:
		return nil, fmt.Errorf("urllcsim: unknown radio kind %d", cfg.Radio)
	}
	if head != nil && cfg.RTKernel {
		head.Bus.Jitter = proc.RTKernel()
	}
	snr := cfg.SNRdB
	if snr == 0 {
		snr = 25
	}
	var ch channel.Model = channel.AWGN{SNR: snr}
	if cfg.BlockageChannel {
		ch = channel.NewBlockage(snr, 25, 120*time.Millisecond, 40*time.Millisecond,
			sim.NewRNG(cfg.Seed^0xB10C))
	}
	// MarginSlots: 0 means "default" (one slot, the §7 rule); pass −1 to
	// request a genuinely zero margin for the §4 failure ablation.
	margin := cfg.MarginSlots
	switch {
	case margin == 0:
		margin = 1
	case margin < 0:
		margin = 0
	}
	harq := cfg.HARQMaxTx
	if harq == 0 {
		harq = 3
	}
	fairness := sched.FairFIFO
	if cfg.RoundRobin {
		fairness = sched.FairRoundRobin
	}
	sys, err := node.NewSystem(node.Config{
		Label:          string(cfg.Pattern),
		Grid:           grid,
		ULGrid:         ulGrid,
		GrantFree:      cfg.GrantFree,
		CGUnits:        cfg.CGUnits,
		CGBackoffSlots: cfg.CGBackoffSlots,
		GNBRadio:       head,
		Channel:        ch,
		MCSIndex:       10,
		MarginSlots:    margin,
		K2Slots:        1,
		HARQMaxTx:      harq,
		HARQFeedback:   cfg.HARQFeedback,
		CoreLatency:    30 * time.Microsecond,
		NUEs:           cfg.UEs,
		PayloadBytes:   32,
		Seed:           cfg.Seed,
		Fairness:       fairness,
		Deadline:       sim.Duration(cfg.Deadline),
		Obs:            cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	return &Scenario{sys: sys, cfg: cfg}, nil
}

func buildGrids(p Pattern, mu nr.Numerology) (grid, ulGrid *nr.Grid, err error) {
	switch p {
	case PatternDDDU, "":
		g, err := nr.BuildGrid(nr.CommonConfig{Mu: mu, Pattern1: nr.PatternDDDU(mu)}, 2, "DDDU")
		return g, nil, err
	case PatternDM:
		g, err := nr.BuildGrid(nr.CommonConfig{Mu: mu, Pattern1: nr.PatternDM(mu, 6, 6)}, 0, "DM")
		return g, nil, err
	case PatternMU:
		g, err := nr.BuildGrid(nr.CommonConfig{Mu: mu, Pattern1: nr.PatternMU(mu, 6, 6)}, 0, "MU")
		return g, nil, err
	case PatternDU:
		g, err := nr.BuildGrid(nr.CommonConfig{Mu: mu, Pattern1: nr.PatternDU(mu)}, 2, "DU")
		return g, nil, err
	case PatternMiniSlot:
		kinds := make([]nr.SymbolKind, nr.SymbolsPerSlot)
		for i := range kinds {
			kinds[i] = nr.SymFlexible
		}
		g, err := nr.MiniSlotGrid(nr.MiniSlotConfig{Mu: mu, Length: 2}, kinds, "mini-slot")
		return g, nil, err
	case PatternFDD:
		return nr.UniformGrid(mu, nr.SymDL, "FDD-DL"), nr.UniformGrid(mu, nr.SymUL, "FDD-UL"), nil
	default:
		// Any other string is parsed as a custom slot pattern: one letter
		// per slot, D/U/S — e.g. "DDSU", "DDDSUU". The mixed slot gets a
		// 6/2/6 split; direct D→U transitions steal 2 guard symbols.
		g, err := nr.ParseGrid(string(p), mu, 6, 6, 2)
		if err != nil {
			return nil, nil, fmt.Errorf("urllcsim: pattern %q: %w", p, err)
		}
		return g, nil, nil
	}
}

// Engine exposes the scenario's discrete-event engine, for self-profiling
// (internal/obs/prof attaches to it) and engine-level throughput metrics
// (Steps, Scheduled, Pending). The returned engine is the live simulation
// core: callers may observe it but must not schedule or run it directly.
func (s *Scenario) Engine() *sim.Engine { return s.sys.Eng }

// SendUplink offers one UL packet of the given size at the given virtual
// time. Returns the packet id.
func (s *Scenario) SendUplink(at time.Duration, bytes int) int {
	return s.SendUplinkFrom(0, at, bytes)
}

// SendUplinkFrom is SendUplink with the packet attributed to logical UE ue.
// Attribution labels metrics, outcomes and the slot ledger only — it changes
// no scheduling or channel decision, so results are identical however
// packets are spread across UEs.
func (s *Scenario) SendUplinkFrom(ue int, at time.Duration, bytes int) int {
	return s.sys.OfferULAs(ue, sim.Time(at), make([]byte, max(bytes, 13)))
}

// SendDownlink offers one DL packet.
func (s *Scenario) SendDownlink(at time.Duration, bytes int) int {
	return s.SendDownlinkFrom(0, at, bytes)
}

// SendDownlinkFrom is SendDownlink attributed to logical UE ue (label only,
// like SendUplinkFrom).
func (s *Scenario) SendDownlinkFrom(ue int, at time.Duration, bytes int) int {
	return s.sys.OfferDLAs(ue, sim.Time(at), make([]byte, max(bytes, 13)))
}

// Run advances virtual time to the horizon and returns the resolved packet
// results so far.
func (s *Scenario) Run(horizon time.Duration) []PacketResult {
	s.sys.Eng.Run(sim.Time(horizon))
	rs := s.sys.Results()
	out := make([]PacketResult, len(rs))
	for i, r := range rs {
		by := r.Breakdown.BySource()
		tot := float64(by[0] + by[1] + by[2])
		pr := PacketResult{
			ID: r.ID, Uplink: r.Uplink, Delivered: r.Delivered,
			Latency: time.Duration(r.Latency), Attempts: r.Attempts,
			bd: r.Breakdown,
		}
		if tot > 0 {
			pr.ProtocolShare = float64(by[core.Protocol]) / tot
			pr.ProcessingShare = float64(by[core.Processing]) / tot
			pr.RadioShare = float64(by[core.Radio]) / tot
		}
		out[i] = pr
	}
	return out
}

// PingOutcome is the result of one echo round trip.
type PingOutcome struct {
	ID        int
	Delivered bool
	RTT       time.Duration
	Uplink    time.Duration
	Downlink  time.Duration
}

// SendPing offers an echo request at the UE: the request travels uplink to
// a server behind the UPF, which replies after turnaround; the reply comes
// back downlink. This is §3's "journey of a ping request", end to end.
func (s *Scenario) SendPing(at time.Duration, bytes int, turnaround time.Duration) int {
	return s.sys.OfferPing(sim.Time(at), bytes, turnaround)
}

// PingResults returns the round trips resolved so far (call after Run).
func (s *Scenario) PingResults() []PingOutcome {
	rs := s.sys.PingResults()
	out := make([]PingOutcome, len(rs))
	for i, r := range rs {
		out[i] = PingOutcome{
			ID: r.ID, Delivered: r.Delivered,
			RTT:    time.Duration(r.RTT),
			Uplink: time.Duration(r.ULLatency), Downlink: time.Duration(r.DLLatency),
		}
	}
	return out
}

// RadioMisses returns how often the gNB missed a slot because processing
// plus sample submission outran the scheduler margin (§4).
func (s *Scenario) RadioMisses() int { return s.sys.Counters().RadioMisses }

// PHYLosses returns the transport blocks lost on air.
func (s *Scenario) PHYLosses() int { return s.sys.Counters().PHYLosses }

// SRsSent returns the number of scheduling requests transmitted.
func (s *Scenario) SRsSent() int { return s.sys.Counters().SRsSent }

// GrantsIssued returns the number of SR→grant handshakes completed.
func (s *Scenario) GrantsIssued() int { return s.sys.Counters().GrantsIssued }

// CGCollisions returns the number of grant-free transport blocks lost to a
// shared-contention-unit collision (CGUnits > 0).
func (s *Scenario) CGCollisions() int { return s.sys.Counters().CGCollisions }

// LayerStat returns the measured (mean µs, std µs, n) of a gNB layer:
// "SDAP", "PDCP", "RLC", "RLC-q", "MAC", "PHY" — the columns of Table 2.
func (s *Scenario) LayerStat(layer string) (mean, std float64, n int64, err error) {
	a, ok := s.sys.LayerStats()[layer]
	if !ok {
		return 0, 0, 0, fmt.Errorf("urllcsim: unknown layer %q", layer)
	}
	return a.Mean(), a.Std(), a.N(), nil
}
