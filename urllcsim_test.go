package urllcsim

import (
	"strings"
	"testing"
	"time"
)

func TestTable1PublicAPI(t *testing.T) {
	cells, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 15 {
		t.Fatalf("Table1 returned %d cells, want 15", len(cells))
	}
	byKey := map[Pattern]map[Mode]bool{}
	for _, c := range cells {
		if byKey[c.Pattern] == nil {
			byKey[c.Pattern] = map[Mode]bool{}
		}
		byKey[c.Pattern][c.Mode] = c.Meets
	}
	// The paper's verdicts.
	if !byKey[PatternDM][GrantFreeUplink] || !byKey[PatternDM][DownlinkMode] {
		t.Fatal("DM must pass GF UL and DL")
	}
	if byKey[PatternDM][GrantBasedUplink] {
		t.Fatal("DM must fail grant-based UL")
	}
	if byKey[PatternDU][DownlinkMode] || byKey[PatternMU][DownlinkMode] {
		t.Fatal("DU/MU must fail DL")
	}
	for _, m := range []Mode{GrantBasedUplink, GrantFreeUplink, DownlinkMode} {
		if !byKey[PatternMiniSlot][m] || !byKey[PatternFDD][m] {
			t.Fatalf("mini-slot and FDD must pass %v", m)
		}
	}
	s, err := Table1String()
	if err != nil || !strings.Contains(s, "Mini-slot") {
		t.Fatalf("Table1String: %v", err)
	}
}

func TestWorstCaseLatencyPublicAPI(t *testing.T) {
	wc, err := WorstCaseLatency(PatternDM, Slot0p25ms, GrantFreeUplink, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if wc > URLLCDeadline || wc < 300*time.Microsecond {
		t.Fatalf("DM GF worst = %v", wc)
	}
	ok, err := MeetsURLLC(PatternDM, Slot0p25ms, GrantFreeUplink, AnalysisOptions{})
	if err != nil || !ok {
		t.Fatal("DM GF must meet URLLC")
	}
	// Adding a 0.3ms radio term breaks it (§4's bottleneck).
	ok, err = MeetsURLLC(PatternDM, Slot0p25ms, GrantFreeUplink,
		AnalysisOptions{RadioLatency: 300 * time.Microsecond})
	if err != nil || ok {
		t.Fatal("0.3ms radio must break the DM budget")
	}
	if _, err := WorstCaseLatency("bogus", Slot0p25ms, DownlinkMode, AnalysisOptions{}); err == nil {
		t.Fatal("bogus pattern accepted")
	}
}

func TestMinimumFR1Slot(t *testing.T) {
	if got := MinimumFR1Slot(); got != 250*time.Microsecond {
		t.Fatalf("min FR1 slot = %v, want 0.25ms", got)
	}
}

func TestScenarioEndToEnd(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sc.SendUplink(time.Duration(i)*2*time.Millisecond, 32)
		sc.SendDownlink(time.Duration(i)*2*time.Millisecond+time.Millisecond, 32)
	}
	rs := sc.Run(200 * time.Millisecond)
	if len(rs) != 40 {
		t.Fatalf("resolved %d packets, want 40", len(rs))
	}
	for _, r := range rs {
		if !r.Delivered {
			t.Fatalf("packet %d lost", r.ID)
		}
		if r.Latency <= 0 || r.Latency > 20*time.Millisecond {
			t.Fatalf("packet %d latency %v implausible", r.ID, r.Latency)
		}
		if r.Journey() == "" {
			t.Fatal("empty journey")
		}
		sum := r.ProtocolShare + r.ProcessingShare + r.RadioShare
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("shares sum to %v", sum)
		}
	}
}

func TestScenarioGrantFreeFaster(t *testing.T) {
	mean := func(gf bool) time.Duration {
		sc, err := NewScenario(ScenarioConfig{
			Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2,
			GrantFree: gf, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			sc.SendUplink(time.Duration(i)*2*time.Millisecond+137*time.Microsecond, 32)
		}
		rs := sc.Run(400 * time.Millisecond)
		var sum time.Duration
		n := 0
		for _, r := range rs {
			if r.Delivered {
				sum += r.Latency
				n++
			}
		}
		if n == 0 {
			t.Fatal("nothing delivered")
		}
		return sum / time.Duration(n)
	}
	gb, gf := mean(false), mean(true)
	if gf >= gb {
		t.Fatalf("grant-free (%v) not faster than grant-based (%v)", gf, gb)
	}
}

func TestScenarioLayerStats(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{Pattern: PatternDDDU, SlotScale: Slot0p5ms, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sc.SendDownlink(time.Duration(i)*2*time.Millisecond, 32)
	}
	sc.Run(400 * time.Millisecond)
	mean, _, n, err := sc.LayerStat("RLC-q")
	if err != nil || n == 0 {
		t.Fatalf("RLC-q stat: %v", err)
	}
	if mean < 100 || mean > 1000 {
		t.Fatalf("RLC-q mean %vµs out of range", mean)
	}
	if _, _, _, err := sc.LayerStat("nope"); err == nil {
		t.Fatal("bogus layer accepted")
	}
}

func TestScenarioZeroMarginMisses(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2,
		MarginSlots: -1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sc.SendDownlink(time.Duration(i)*2*time.Millisecond, 32)
	}
	sc.Run(100 * time.Millisecond)
	if sc.RadioMisses() == 0 {
		t.Fatal("zero margin produced no radio misses")
	}
}

func TestScenarioBlockage(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Pattern: PatternDDDU, SlotScale: Slot125us, Radio: RadioPCIe,
		GrantFree: true, BlockageChannel: true, SNRdB: 22, HARQMaxTx: 6, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		sc.SendDownlink(time.Duration(i)*500*time.Microsecond, 32)
	}
	rs := sc.Run(time.Second)
	if sc.PHYLosses() == 0 {
		t.Fatal("blockage channel produced no PHY losses")
	}
	delivered := 0
	for _, r := range rs {
		if r.Delivered {
			delivered++
		}
	}
	if delivered < 150 {
		t.Fatalf("only %d/300 delivered through blockage", delivered)
	}
}

func TestScenarioBadConfig(t *testing.T) {
	if _, err := NewScenario(ScenarioConfig{Pattern: "nope"}); err == nil {
		t.Fatal("bogus pattern accepted")
	}
	if _, err := NewScenario(ScenarioConfig{Radio: RadioKind(99)}); err == nil {
		t.Fatal("bogus radio accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if GrantBasedUplink.String() != "grant-based UL" || DownlinkMode.String() != "DL" {
		t.Fatal("mode strings wrong")
	}
}

func TestCustomPatternString(t *testing.T) {
	// Any D/U/S string is a valid pattern for both the scenario and the
	// analytic engine.
	sc, err := NewScenario(ScenarioConfig{
		Pattern: "DDSU", SlotScale: Slot0p25ms, GrantFree: true,
		Radio: RadioPCIe, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.SendUplink(100*time.Microsecond, 32)
	rs := sc.Run(50 * time.Millisecond)
	if len(rs) != 1 || !rs[0].Delivered {
		t.Fatalf("custom pattern run failed: %+v", rs)
	}
	wc, err := WorstCaseLatency("DDSU", Slot0p25ms, GrantFreeUplink, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if wc <= 0 || wc > 2*time.Millisecond {
		t.Fatalf("custom pattern worst case %v implausible", wc)
	}
	// Garbage still errors.
	if _, err := WorstCaseLatency("DXQ", Slot0p25ms, GrantFreeUplink, AnalysisOptions{}); err == nil {
		t.Fatal("garbage pattern accepted")
	}
	if _, err := NewScenario(ScenarioConfig{Pattern: "DDU", SlotScale: Slot0p5ms}); err == nil {
		t.Fatal("illegal 1.5ms period accepted")
	}
}

func TestPingFacade(t *testing.T) {
	sc, err := NewScenario(ScenarioConfig{
		Pattern: PatternDDDU, SlotScale: Slot0p5ms, Radio: RadioUSB2, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sc.SendPing(time.Duration(i)*2*time.Millisecond, 32, 100*time.Microsecond)
	}
	sc.Run(200 * time.Millisecond)
	prs := sc.PingResults()
	if len(prs) != 10 {
		t.Fatalf("ping results: %d", len(prs))
	}
	for _, p := range prs {
		if !p.Delivered {
			t.Fatalf("ping %d lost", p.ID)
		}
		if p.RTT != p.Uplink+100*time.Microsecond+p.Downlink {
			t.Fatalf("RTT accounting broken: %+v", p)
		}
	}
}
